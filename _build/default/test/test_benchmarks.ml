open Ph_pauli
open Ph_pauli_ir
open Ph_benchmarks

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qcheck = QCheck_alcotest.to_alcotest

(* --- Graphs --- *)

let test_regular () =
  let g = Graphs.regular ~seed:1 20 4 in
  check_int "nodes" 20 g.Graphs.n;
  check_int "edges" 40 (Graphs.n_edges g);
  let deg = Array.make 20 0 in
  List.iter
    (fun (a, b, _) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    g.Graphs.edges;
  Array.iter (fun d -> check_int "regular degree" 4 d) deg

let test_regular_deterministic () =
  let g1 = Graphs.regular ~seed:7 12 4 in
  let g2 = Graphs.regular ~seed:7 12 4 in
  check "same edges" true (g1.Graphs.edges = g2.Graphs.edges)

let test_regular_validation () =
  check "odd product rejected" true
    (match Graphs.regular ~seed:1 5 3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_erdos_renyi () =
  let g = Graphs.erdos_renyi ~seed:2 20 0.3 in
  check "some edges" true (Graphs.n_edges g > 10);
  check "within bound" true (Graphs.n_edges g < 190)

let test_cut_value () =
  let g = { Graphs.n = 3; edges = [ 0, 1, 1.0; 1, 2, 2.0 ] } in
  Alcotest.(check (float 1e-12)) "cut 0b001" 1.0 (Graphs.cut_value g 0b001);
  Alcotest.(check (float 1e-12)) "cut 0b010" 3.0 (Graphs.cut_value g 0b010);
  Alcotest.(check (float 1e-12)) "max cut" 3.0 (Graphs.max_cut g)

let prop_maxcut_bound =
  QCheck.Test.make ~name:"max cut bounded by total weight" ~count:30
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Graphs.erdos_renyi ~seed 8 0.4 in
      let total = List.fold_left (fun a (_, _, w) -> a +. w) 0. g.Graphs.edges in
      let mc = Graphs.max_cut g in
      mc <= total +. 1e-9 && mc >= total /. 2. -. 1e-9)

(* --- QAOA --- *)

let test_maxcut_program () =
  let g = Graphs.regular ~seed:1 20 4 in
  let prog = Qaoa.maxcut g ~gamma:0.5 in
  check_int "one block" 1 (Program.block_count prog);
  check_int "one term per edge" 40 (Program.term_count prog);
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (t : Pauli_term.t) -> check_int "weight-2 strings" 2 (Pauli_string.weight t.str))
        (Block.terms b))
    (Program.blocks prog)

let test_tsp_counts () =
  let prog = Qaoa.tsp 4 ~gamma:0.5 in
  check_int "16 qubits" 16 (Program.n_qubits prog);
  let singles, zz = Qaoa.tsp_term_counts 4 in
  check_int "singles formula" 16 singles;
  check_int "zz formula (Table 1)" 96 zz;
  check_int "total terms" (singles + zz) (Program.term_count prog);
  let singles5, zz5 = Qaoa.tsp_term_counts 5 in
  check_int "TSP-5 strings" 225 (singles5 + zz5)

(* --- Lattices --- *)

let test_lattice_edges () =
  check_int "chain" 29 (List.length (Lattice.edges [ 30 ]));
  check_int "5x6 grid" 49 (List.length (Lattice.edges [ 5; 6 ]));
  check_int "2x3x5 block" 59 (List.length (Lattice.edges [ 2; 3; 5 ]));
  check_int "sites" 30 (Lattice.n_sites [ 2; 3; 5 ])

let test_ising_heisenberg_counts () =
  (* Table 1: Ising 29/49/59 strings, Heisenberg 87/147/177. *)
  List.iter
    (fun (d, ising_n, heisen_n) ->
      check_int "ising strings" ising_n (Program.term_count (Ising.paper_benchmark d));
      check_int "heisenberg strings" heisen_n
        (Program.term_count (Heisenberg.paper_benchmark d)))
    [ 1, 29, 87; 2, 49, 147; 3, 59, 177 ]

let test_heisenberg_blocks_commute () =
  let prog = Heisenberg.paper_benchmark 1 in
  List.iter
    (fun b -> check "edge block commutes" true (Block.mutually_commuting b))
    (Program.blocks prog)

(* --- Jordan-Wigner --- *)

let test_jw_single () =
  let terms = Jordan_wigner.single_excitation ~n:5 1 4 0.8 in
  check_int "two strings" 2 (List.length terms);
  List.iter
    (fun (t : Pauli_term.t) ->
      Alcotest.(check (float 1e-12)) "coeff" 0.4 t.coeff;
      check_int "support spans i..a" 4 (Pauli_string.weight t.str);
      check "Z chain inside" true
        (Pauli_string.get t.str 2 = Pauli.Z && Pauli_string.get t.str 3 = Pauli.Z))
    terms;
  match terms with
  | [ tx; ty ] ->
    check "X endpoints" true
      (Pauli_string.get tx.str 1 = Pauli.X && Pauli_string.get tx.str 4 = Pauli.X);
    check "Y endpoints" true
      (Pauli_string.get ty.str 1 = Pauli.Y && Pauli_string.get ty.str 4 = Pauli.Y)
  | _ -> Alcotest.fail "expected two terms"

let test_jw_double () =
  let terms = Jordan_wigner.double_excitation ~n:8 (0, 2, 5, 7) 0.8 in
  check_int "eight strings" 8 (List.length terms);
  let plus, minus =
    List.partition (fun (t : Pauli_term.t) -> t.coeff > 0.) terms
  in
  check_int "four plus" 4 (List.length plus);
  check_int "four minus" 4 (List.length minus);
  (* Mutually commuting: they share one variational parameter. *)
  let rec pairwise = function
    | [] -> true
    | (t : Pauli_term.t) :: rest ->
      List.for_all (fun (u : Pauli_term.t) -> Pauli_string.commutes t.str u.str) rest
      && pairwise rest
  in
  check "mutually commute" true (pairwise terms);
  (* Z chains on 1 and 6. *)
  List.iter
    (fun (t : Pauli_term.t) ->
      check "chain at 1" true (Pauli_string.get t.str 1 = Pauli.Z);
      check "chain at 6" true (Pauli_string.get t.str 6 = Pauli.Z);
      check "gap 3,4 idle" true
        (Pauli_string.get t.str 3 = Pauli.I && Pauli_string.get t.str 4 = Pauli.I))
    terms

let test_jw_validation () =
  check "rejects dup indices" true
    (match Jordan_wigner.double_excitation ~n:8 (0, 0, 1, 2) 1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "rejects bad single" true
    (match Jordan_wigner.single_excitation ~n:4 3 1 1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- UCCSD --- *)

let test_uccsd_structure () =
  let prog = Uccsd.ansatz ~n_qubits:8 () in
  let singles, doubles = Uccsd.excitation_counts ~n_qubits:8 in
  check_int "singles (2α + 2β occ/virt)" 8 singles;
  check_int "doubles (αα + ββ + αβ)" 18 doubles;
  check_int "blocks" (singles + doubles) (Program.block_count prog);
  check_int "strings" ((2 * singles) + (8 * doubles)) (Program.term_count prog);
  List.iter
    (fun b -> check "block commutes" true (Block.mutually_commuting b))
    (Program.blocks prog)

let test_uccsd_subsampling () =
  let full = Uccsd.ansatz ~n_qubits:8 () in
  let capped = Uccsd.ansatz ~max_doubles:5 ~n_qubits:8 () in
  check "fewer blocks" true (Program.block_count capped < Program.block_count full);
  check_int "8 singles + 5 doubles" 13 (Program.block_count capped)

let test_uccsd_validation () =
  check "rejects non-multiple of 4" true
    (match Uccsd.ansatz ~n_qubits:6 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Molecule / Random --- *)

let test_molecule_target () =
  let prog = Molecule.synthetic ~n_qubits:12 ~target_strings:500 () in
  check "reaches target" true (Program.term_count prog >= 500);
  check "within one group" true (Program.term_count prog < 520)

let test_molecule_deterministic () =
  let p1 = Molecule.synthetic ~seed:9 ~n_qubits:10 ~target_strings:100 () in
  let p2 = Molecule.synthetic ~seed:9 ~n_qubits:10 ~target_strings:100 () in
  check "same program" true (Program.same_multiset p1 p2)

let test_random_h_recipe () =
  let prog = Random_h.program ~density:5.0 ~n_qubits:10 () in
  check_int "5n^2 strings" 500 (Program.term_count prog);
  List.iter
    (fun (b : Block.t) ->
      let t = Block.representative b in
      let w = Pauli_string.weight t.str in
      check "support in 1..n" true (w >= 1 && w <= 10))
    (Program.blocks prog)

(* --- Suite --- *)

let test_suite_names () =
  let names = List.map (fun b -> b.Suite.name) (Suite.all ()) in
  List.iter
    (fun n -> check (n ^ " present") true (List.mem n names))
    [ "UCCSD-8"; "UCCSD-28"; "REG-20-4"; "Rand-20-0.5"; "TSP-5"; "Ising-3D";
      "Heisen-1D"; "N2"; "NaCl"; "Rand-30" ]

let test_suite_full_has_31 () =
  check_int "31 benchmarks at paper scale" 31 (List.length (Suite.all ~full:true ()));
  check_int "14 SC benchmarks" 14 (List.length (Suite.sc ()))

let test_suite_generates () =
  List.iter
    (fun name ->
      let b = Suite.find name in
      let prog = b.Suite.generate () in
      check (name ^ " nonempty") true (Program.term_count prog > 0))
    [ "REG-20-8"; "Ising-2D"; "Heisen-3D"; "TSP-4"; "UCCSD-8" ]

let test_suite_deterministic () =
  List.iter
    (fun name ->
      let b = Suite.find name in
      check (name ^ " deterministic") true
        (Program.same_multiset (b.Suite.generate ()) (b.Suite.generate ())))
    [ "REG-20-4"; "Rand-20-0.5"; "UCCSD-8"; "N2"; "Rand-30" ]

let () =
  Alcotest.run "benchmarks"
    [
      ( "graphs",
        [
          Alcotest.test_case "regular" `Quick test_regular;
          Alcotest.test_case "deterministic" `Quick test_regular_deterministic;
          Alcotest.test_case "validation" `Quick test_regular_validation;
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "cut values" `Quick test_cut_value;
          qcheck prop_maxcut_bound;
        ] );
      ( "qaoa",
        [
          Alcotest.test_case "maxcut program" `Quick test_maxcut_program;
          Alcotest.test_case "tsp counts match Table 1" `Quick test_tsp_counts;
        ] );
      ( "lattice",
        [
          Alcotest.test_case "edge counts" `Quick test_lattice_edges;
          Alcotest.test_case "ising/heisenberg Table 1 counts" `Quick
            test_ising_heisenberg_counts;
          Alcotest.test_case "heisenberg blocks commute" `Quick
            test_heisenberg_blocks_commute;
        ] );
      ( "jordan_wigner",
        [
          Alcotest.test_case "single excitation" `Quick test_jw_single;
          Alcotest.test_case "double excitation" `Quick test_jw_double;
          Alcotest.test_case "validation" `Quick test_jw_validation;
        ] );
      ( "uccsd",
        [
          Alcotest.test_case "structure" `Quick test_uccsd_structure;
          Alcotest.test_case "subsampling" `Quick test_uccsd_subsampling;
          Alcotest.test_case "validation" `Quick test_uccsd_validation;
        ] );
      ( "molecule_random",
        [
          Alcotest.test_case "molecule target" `Quick test_molecule_target;
          Alcotest.test_case "molecule deterministic" `Quick test_molecule_deterministic;
          Alcotest.test_case "random recipe" `Quick test_random_h_recipe;
        ] );
      ( "suite",
        [
          Alcotest.test_case "names" `Quick test_suite_names;
          Alcotest.test_case "full scale count" `Quick test_suite_full_has_31;
          Alcotest.test_case "programs generate" `Quick test_suite_generates;
          Alcotest.test_case "deterministic regeneration" `Quick test_suite_deterministic;
        ] );
    ]
