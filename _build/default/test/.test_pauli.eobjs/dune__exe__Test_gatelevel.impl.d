test/test_gatelevel.ml: Alcotest Array Circuit Draw Filename Gate List Matrix Peephole Ph_gatelevel Ph_linalg Printf QCheck QCheck_alcotest Qasm String Sys
