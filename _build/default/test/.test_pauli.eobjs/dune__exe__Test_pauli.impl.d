test/test_pauli.ml: Alcotest Fun List Pauli Pauli_string Pauli_term Ph_pauli QCheck QCheck_alcotest String
