test/test_failure_injection.mli:
