test/test_gatelevel.mli:
