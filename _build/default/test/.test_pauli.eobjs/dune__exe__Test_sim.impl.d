test/test_sim.ml: Alcotest Array Circuit Devices Gate Graphs Layout Noise_model Noisy_sim Option Paulihedral Ph_benchmarks Ph_gatelevel Ph_hardware Ph_sim Ph_synthesis Printf Qaoa Qaoa_run
