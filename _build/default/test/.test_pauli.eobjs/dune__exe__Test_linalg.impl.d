test/test_linalg.ml: Alcotest Array Cplx Float Gen List Matrix Ph_linalg Printf QCheck QCheck_alcotest Statevector
