test/test_pauli_ir.mli:
