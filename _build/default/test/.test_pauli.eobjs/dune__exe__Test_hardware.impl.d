test/test_hardware.ml: Alcotest Array Circuit Coupling Devices Fun Gate Gen Layout List Noise_model Ph_gatelevel Ph_hardware QCheck QCheck_alcotest Stdlib
