test/test_verify.ml: Alcotest Array Circuit Float Gate Layout List Pauli_frame Pauli_string Ph_gatelevel Ph_hardware Ph_linalg Ph_pauli Ph_verify Unitary_check
