test/test_pauli_ir.ml: Alcotest Array Block Cplx List Matrix Parser Pauli Pauli_string Pauli_term Ph_linalg Ph_pauli Ph_pauli_ir Printf Program QCheck QCheck_alcotest Semantics Trotter
