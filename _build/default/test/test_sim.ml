open Ph_gatelevel
open Ph_hardware
open Ph_benchmarks
open Ph_sim

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let noiseless = Noise_model.uniform ~cnot:0. ~single:0. ~readout:0. ()

(* --- Noisy_sim --- *)

let test_noiseless_distribution () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let dist = Noisy_sim.output_distribution ~noise:noiseless ~trajectories:0 ~seed:0 c in
  checkf "bell 00" 0.5 dist.(0);
  checkf "bell 11" 0.5 dist.(3);
  checkf "bell 01" 0. dist.(1)

let test_noisy_degrades () =
  let noisy = Noise_model.uniform ~cnot:0.05 ~single:0.01 ~readout:0. () in
  let c =
    Circuit.of_gates 2
      [ Gate.H 0; Gate.Cnot (0, 1); Gate.Cnot (0, 1); Gate.H 0 ]
  in
  (* Ideal output = |00>. *)
  let dist = Noisy_sim.output_distribution ~noise:noisy ~trajectories:200 ~seed:5 c in
  check "fidelity below 1" true (dist.(0) < 1.0);
  check "fidelity still high" true (dist.(0) > 0.7);
  let total = Array.fold_left ( +. ) 0. dist in
  checkf "normalized" 1.0 total

let test_noisy_deterministic_seed () =
  let noisy = Noise_model.uniform ~cnot:0.05 ~single:0.01 ~readout:0. () in
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let d1 = Noisy_sim.output_distribution ~noise:noisy ~trajectories:50 ~seed:3 c in
  let d2 = Noisy_sim.output_distribution ~noise:noisy ~trajectories:50 ~seed:3 c in
  check "same seed, same result" true (d1 = d2)

let test_success_probability () =
  let dist = [| 0.25; 0.25; 0.25; 0.25 |] in
  let p =
    Noisy_sim.success_probability dist ~measure:[ 0; 1 ]
      ~readout:(fun _ -> 0.)
      ~is_success:(fun bits -> bits = 0 || bits = 3)
  in
  checkf "half the mass" 0.5 p;
  let p_ro =
    Noisy_sim.success_probability dist ~measure:[ 0; 1 ]
      ~readout:(fun _ -> 0.1)
      ~is_success:(fun bits -> bits = 0 || bits = 3)
  in
  checkf "degraded by readout" (0.5 *. 0.81) p_ro

let test_measure_reordering () =
  (* |10⟩ on physical wires; logical order reversed by the measure list. *)
  let dist = Array.make 4 0. in
  dist.(0b10) <- 1.0;
  let p =
    Noisy_sim.success_probability dist ~measure:[ 1; 0 ]
      ~readout:(fun _ -> 0.)
      ~is_success:(fun bits -> bits = 0b01)
  in
  checkf "logical bit order follows measure list" 1.0 p

(* --- Qaoa_run --- *)

let triangle = { Graphs.n = 3; edges = [ 0, 1, 1.0; 1, 2, 1.0; 0, 2, 1.0 ] }

let logical_kernel g gamma =
  (* Identity-layout physical kernel for testing. *)
  let prog = Qaoa.maxcut g ~gamma in
  let r = Ph_synthesis.Naive.synthesize prog in
  {
    Qaoa_run.phase = r.circuit;
    initial_layout = Layout.identity g.Graphs.n g.Graphs.n;
    final_layout = Layout.identity g.Graphs.n g.Graphs.n;
  }

let test_full_circuit_shape () =
  let kernel = logical_kernel triangle 0.4 in
  let c = Qaoa_run.full_circuit kernel ~beta:0.3 in
  (* 3 H + kernel + 3 Rx *)
  Alcotest.(check int) "gate count" (6 + Circuit.length kernel.Qaoa_run.phase)
    (Circuit.length c);
  Alcotest.(check (list int)) "measure qubits" [ 0; 1; 2 ]
    (Qaoa_run.measure_qubits kernel)

let test_expected_cut_uniform () =
  (* H-layer only: uniform superposition; expected cut of a triangle =
     (3 edges)·(1/2) = 1.5. *)
  let dist = Array.make 8 (1. /. 8.) in
  checkf "uniform expected cut" 1.5 (Qaoa_run.expected_cut triangle dist);
  (* Optimal cuts of a unit triangle have value 2 (6 of 8 bitstrings). *)
  checkf "optimal fraction" 0.75 (Qaoa_run.optimal_fraction triangle dist)

let test_qaoa_beats_random_guessing () =
  let gamma, beta = Qaoa_run.optimize_parameters ~grid:10 triangle in
  let kernel = logical_kernel triangle gamma in
  let outcome =
    Qaoa_run.evaluate ~noise:noiseless ~trajectories:0 ~seed:0 triangle kernel ~beta
  in
  checkf "noiseless esp = 1" 1.0 outcome.Qaoa_run.esp;
  check
    (Printf.sprintf "p=1 QAOA above uniform baseline (%.3f > 0.75)" outcome.Qaoa_run.success)
    true
    (outcome.Qaoa_run.success > 0.75)

let test_noise_reduces_success () =
  let gamma, beta = Qaoa_run.optimize_parameters ~grid:8 triangle in
  let kernel = logical_kernel triangle gamma in
  let ideal =
    Qaoa_run.evaluate ~noise:noiseless ~trajectories:0 ~seed:0 triangle kernel ~beta
  in
  let noisy_model = Noise_model.uniform ~cnot:0.05 ~single:0.005 ~readout:0.02 () in
  let noisy =
    Qaoa_run.evaluate ~noise:noisy_model ~trajectories:150 ~seed:11 triangle kernel ~beta
  in
  check "noise reduces success" true (noisy.Qaoa_run.success < ideal.Qaoa_run.success);
  check "esp below 1" true (noisy.Qaoa_run.esp < 1.0)

let test_evaluate_on_device () =
  (* Compile to Melbourne with the SC backend and run the full study path. *)
  let g = Graphs.regular ~seed:3 6 2 in
  let gamma, beta = Qaoa_run.optimize_parameters ~grid:8 g in
  let prog = Qaoa.maxcut g ~gamma in
  let out =
    Paulihedral.Compiler.compile_sc ~coupling:Devices.melbourne prog
  in
  let kernel =
    {
      Qaoa_run.phase = out.Paulihedral.Compiler.circuit;
      initial_layout = Option.get out.Paulihedral.Compiler.initial_layout;
      final_layout = Option.get out.Paulihedral.Compiler.final_layout;
    }
  in
  let noise = Noise_model.calibrated Devices.melbourne ~seed:1 () in
  let outcome = Qaoa_run.evaluate ~noise ~trajectories:100 ~seed:7 g kernel ~beta in
  check "esp in (0,1)" true (outcome.Qaoa_run.esp > 0. && outcome.Qaoa_run.esp < 1.);
  check "success in (0,1]" true
    (outcome.Qaoa_run.success > 0. && outcome.Qaoa_run.success <= 1.)

let () =
  Alcotest.run "sim"
    [
      ( "noisy_sim",
        [
          Alcotest.test_case "noiseless bell" `Quick test_noiseless_distribution;
          Alcotest.test_case "noise degrades fidelity" `Quick test_noisy_degrades;
          Alcotest.test_case "seeded determinism" `Quick test_noisy_deterministic_seed;
          Alcotest.test_case "success probability" `Quick test_success_probability;
          Alcotest.test_case "measure reordering" `Quick test_measure_reordering;
        ] );
      ( "qaoa_run",
        [
          Alcotest.test_case "full circuit shape" `Quick test_full_circuit_shape;
          Alcotest.test_case "expected cut" `Quick test_expected_cut_uniform;
          Alcotest.test_case "qaoa beats uniform" `Quick test_qaoa_beats_random_guessing;
          Alcotest.test_case "noise reduces success" `Quick test_noise_reduces_success;
          Alcotest.test_case "end-to-end on melbourne" `Quick test_evaluate_on_device;
        ] );
    ]
